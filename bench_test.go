// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its rows/series), plus ablation benchmarks for
// the design choices called out in DESIGN.md and micro-benchmarks of the
// simulator's hot paths.
//
// The dynamic experiments (Figure 6, Table 9, Figure 7) run at a scaled
// window sized for benchmark runs; cmd/experiments regenerates them at the
// full calibration scale recorded in EXPERIMENTS.md. Set
// GALS_BENCH_WINDOW to override the window.
package gals

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"gals/internal/bpred"
	"gals/internal/cache"
	"gals/internal/core"
	"gals/internal/isa"
	"gals/internal/service"
	"gals/internal/timing"
	"gals/internal/workload"
)

// benchWindow is the instruction window for dynamic experiment benchmarks.
func benchWindow() int64 {
	if s := os.Getenv("GALS_BENCH_WINDOW"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	// 60K instructions: large enough that warmup (compulsory misses) does
	// not drown the Figure 6 means; the recorded EXPERIMENTS.md run uses
	// 100K.
	return 60_000
}

var printOnce sync.Map

// runExperimentBench regenerates one experiment per iteration (the suite
// pipeline is cached per options, so repeated iterations measure retrieval
// plus any uncached work) and prints the resulting rows once.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	o := DefaultExperimentOptions()
	o.Window = benchWindow()
	var tab *ExperimentTable
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = RunExperiment(id, o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && tab != nil {
		fmt.Println(tab.Render())
	}
}

func BenchmarkTable1(b *testing.B)  { runExperimentBench(b, "table1") }
func BenchmarkFigure2(b *testing.B) { runExperimentBench(b, "figure2") }
func BenchmarkTable2(b *testing.B)  { runExperimentBench(b, "table2") }
func BenchmarkTable3(b *testing.B)  { runExperimentBench(b, "table3") }
func BenchmarkFigure3(b *testing.B) { runExperimentBench(b, "figure3") }
func BenchmarkFigure4(b *testing.B) { runExperimentBench(b, "figure4") }
func BenchmarkTable4(b *testing.B)  { runExperimentBench(b, "table4") }
func BenchmarkTable5(b *testing.B)  { runExperimentBench(b, "table5") }
func BenchmarkTable6(b *testing.B)  { runExperimentBench(b, "table6") }
func BenchmarkTable7(b *testing.B)  { runExperimentBench(b, "table7") }
func BenchmarkTable8(b *testing.B)  { runExperimentBench(b, "table8") }

// BenchmarkFigure6 regenerates the headline comparison and reports the
// suite-mean improvements as custom metrics (paper: +17.6% / +20.4%).
func BenchmarkFigure6(b *testing.B) {
	o := DefaultExperimentOptions()
	o.Window = benchWindow()
	var r *SuiteResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = EvaluateSuite(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanProg, "program-adaptive-%")
	b.ReportMetric(r.MeanPhase, "phase-adaptive-%")
	if _, done := printOnce.LoadOrStore("figure6", true); !done {
		tab, _ := RunExperiment("figure6", o)
		fmt.Println(tab.Render())
	}
}

func BenchmarkTable9(b *testing.B)  { runExperimentBench(b, "table9") }
func BenchmarkFigure7(b *testing.B) { runExperimentBench(b, "figure7") }

// ---------------------------------------------------------------------------
// Ablation benchmarks: the design choices DESIGN.md calls out.

// ablationRun reports the run time (us) of one machine variant on apsi, the
// paper's phase-rich example.
func ablationRun(b *testing.B, mutate func(*Config)) {
	b.Helper()
	spec, err := Workload("apsi")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultPhaseAdaptive()
	mutate(&cfg)
	var res *Result
	for i := 0; i < b.N; i++ {
		res, err = Run(spec, cfg, benchWindow())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Seconds()*1e6, "us-runtime")
	b.ReportMetric(float64(res.Stats.Reconfigs), "reconfigs")
}

// BenchmarkAblationControllersOff freezes both controllers: the cost of
// losing phase adaptation entirely.
func BenchmarkAblationControllersOff(b *testing.B) {
	ablationRun(b, func(c *Config) { c.DisableCacheAdapt = true; c.DisableIQAdapt = true })
}

// BenchmarkAblationCacheOnly enables only the Accounting Cache controller.
func BenchmarkAblationCacheOnly(b *testing.B) {
	ablationRun(b, func(c *Config) { c.DisableIQAdapt = true })
}

// BenchmarkAblationIQOnly enables only the ILP-tracking queue controller.
func BenchmarkAblationIQOnly(b *testing.B) {
	ablationRun(b, func(c *Config) { c.DisableCacheAdapt = true })
}

// BenchmarkAblationFull is the complete Phase-Adaptive machine.
func BenchmarkAblationFull(b *testing.B) {
	ablationRun(b, func(c *Config) {})
}

// BenchmarkAblationIQHysteresis1 drops the queue controller's anti-thrash
// hysteresis to a single interval (the paper's literal "resize as soon as
// all four counts are available").
func BenchmarkAblationIQHysteresis1(b *testing.B) {
	ablationRun(b, func(c *Config) { c.IQHysteresis = 1 })
}

// BenchmarkAblationSlowPLL runs with unscaled 10-20us PLL lock times,
// showing the cost of slow frequency changes at short phase lengths.
func BenchmarkAblationSlowPLL(b *testing.B) {
	ablationRun(b, func(c *Config) { c.PLLScale = 1.0 })
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the simulator's hot paths.

func BenchmarkSimulatorSynchronous(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	m := core.NewMachine(spec, core.DefaultSync())
	b.ResetTimer()
	m.Run(int64(b.N))
}

func BenchmarkSimulatorProgramAdaptive(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	m := core.NewMachine(spec, core.DefaultAdaptive(core.ProgramAdaptive))
	b.ResetTimer()
	m.Run(int64(b.N))
}

func BenchmarkSimulatorPhaseAdaptive(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1
	m := core.NewMachine(spec, cfg)
	b.ResetTimer()
	m.Run(int64(b.N))
}

// BenchmarkSimulatorPhaseAdaptiveContext is BenchmarkSimulatorPhaseAdaptive
// through the cancellable entry point with a live (cancellable, never
// cancelled) context: the overhead of deadline support on the hot loop —
// one select per 10,000-instruction quantum. The committed bound is <= 1%
// versus the plain Run path (which is itself untouched: a nil context
// delegates straight to Run). See PERFORMANCE.md.
func BenchmarkSimulatorPhaseAdaptiveContext(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1
	m := core.NewMachine(spec, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b.ResetTimer()
	if _, err := m.RunContext(ctx, int64(b.N)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatorPhaseAdaptiveParallel2/3 run the same machine through
// the stage-parallel pipeline (degree 2: [generate+functional] -> [timing];
// degree 3: [generate] -> [functional] -> [timing]). On a multi-core host
// the wall time approaches the bottleneck stage (timing); on a single core
// these measure the pipeline's overhead over sequential execution. Results
// are bit-identical either way (see TestParityParallel*).
func BenchmarkSimulatorPhaseAdaptiveParallel2(b *testing.B) {
	benchParallel(b, 2)
}

func BenchmarkSimulatorPhaseAdaptiveParallel3(b *testing.B) {
	benchParallel(b, 3)
}

func benchParallel(b *testing.B, degree int) {
	b.Helper()
	spec, _ := workload.ByName("gcc")
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1
	m := core.NewMachine(spec, cfg)
	b.ResetTimer()
	m.RunParallel(int64(b.N), degree)
}

// BenchmarkTelemetryOverhead pins the telemetry sampler's A/B contract:
// a machine with no sampler attached (the default) must run within ~1% of
// the pre-telemetry baseline, and the cost with a sampler attached must be
// quantified, not guessed. Two identical phase-adaptive machines advance in
// interleaved chunks — alternation cancels cache/thermal drift that would
// bias back-to-back timed loops — and the off/on per-instruction costs land
// as custom metrics (off-ns/inst, on-ns/inst, overhead-%). The reported
// ns/op is the telemetry-OFF path, so regressions in the nil-sampler check
// itself surface in the headline number. See PERFORMANCE.md.
func BenchmarkTelemetryOverhead(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1
	off := core.NewMachine(spec, cfg)
	on := core.NewMachine(spec, cfg)
	// An effectively unbounded ring: the measured cost is sampling, not
	// ring-wraparound writes (which are the same stores anyway).
	on.SetTelemetry(core.NewTelemetry(1 << 20))

	const chunk = 10_000
	var offNS, onNS int64
	b.ResetTimer()
	remaining := int64(b.N)
	for remaining > 0 {
		n := int64(chunk)
		if n > remaining {
			n = remaining
		}
		t0 := nowNS()
		off.Run(n)
		t1 := nowNS()
		b.StopTimer() // keep the headline ns/op = the telemetry-OFF path
		t2 := nowNS()
		on.Run(n)
		t3 := nowNS()
		b.StartTimer()
		offNS += t1 - t0
		onNS += t3 - t2
		remaining -= n
	}
	b.StopTimer()
	perOff := float64(offNS) / float64(b.N)
	perOn := float64(onNS) / float64(b.N)
	b.ReportMetric(perOff, "off-ns/inst")
	b.ReportMetric(perOn, "on-ns/inst")
	b.ReportMetric(100*(perOn-perOff)/perOff, "overhead-%")
}

func nowNS() int64 { return time.Now().UnixNano() }

// BenchmarkStageFunctional isolates the functional stage's per-instruction
// cost (cache-hierarchy accesses + ILP tracking) the way the parallel
// machine's middle stage runs it: positions only, no timing model. With
// BenchmarkTraceGeneration (generate) and BenchmarkSimulatorPhaseAdaptive
// (all three stages fused), this decomposes the sequential budget into the
// stage costs that bound parallel wall time; PERFORMANCE.md's scaling
// table derives from these.
func BenchmarkStageFunctional(b *testing.B) {
	// The adaptive machine's geometries (core/machine.go): 64KB 4-way L1I,
	// 32KB 8-way L1D, 256KB 8-way L2.
	icache := cache.New(cache.Geometry{Name: "L1I", Sets: 16 * 1024 / 64, Ways: 4, LineBytes: 64})
	dcache := cache.New(cache.Geometry{Name: "L1D", Sets: 32 * 1024 / 64, Ways: 8, LineBytes: 64})
	l2 := cache.New(cache.Geometry{Name: "L2", Sets: 256 * 1024 / 128, Ways: 8, LineBytes: 128})
	spec, _ := workload.ByName("gcc")
	tr := spec.NewTrace()
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Next(&in)
		icache.AccessPos(in.PC, false)
		if in.Class == isa.Load {
			if dcache.AccessPos(in.Addr, false) < 0 {
				l2.AccessPos(in.Addr, false)
			}
		} else if in.Class == isa.Store {
			if dcache.AccessPos(in.Addr, true) < 0 {
				l2.AccessPos(in.Addr, true)
			}
		}
	}
}

func BenchmarkAccountingCacheAccess(b *testing.B) {
	c := cache.New(cache.Geometry{Name: "bench", Sets: 512, Ways: 8, LineBytes: 64})
	c.Configure(2, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)&0xFFFFF, i&7 == 0)
	}
}

func BenchmarkBranchPredictor(b *testing.B) {
	p := bpred.New(timing.ICache16K1W.Spec().BPred)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := uint64(0x400000 + (i%512)*36)
		taken := i%3 != 0
		p.Predict(pc)
		p.Update(pc, taken)
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	tr := spec.NewTrace()
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Next(&in)
	}
}

// BenchmarkTraceReplay measures the recorded-trace path the sweeps now run
// on: one immutable recording per benchmark, replayed per configuration.
func BenchmarkTraceReplay(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	rec := spec.Record(1 << 16)
	rp := rec.Replay()
	var in isa.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rp.Count() == rec.Len() {
			rp = rec.Replay() // stay inside the slab
		}
		rp.Next(&in)
	}
}

// BenchmarkSimulatorPhaseAdaptiveRecorded is BenchmarkSimulatorPhaseAdaptive
// on a recorded trace: the simulator cost with generation amortized away.
func BenchmarkSimulatorPhaseAdaptiveRecorded(b *testing.B) {
	spec, _ := workload.ByName("gcc")
	rec := spec.Record(int64(b.N))
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1
	m := core.NewMachineSource(rec.Replay(), cfg)
	b.ResetTimer()
	m.Run(int64(b.N))
}

// warmRunAllocBudget bounds allocations per warm (cache-hit) service run.
// The warm path is: normalize -> cache key (canonical JSON) -> singleflight
// -> disk load + decode; the audit that set this measured 36 allocs/op
// (after memoizing the workload suite, which had been rebuilt per request
// validation). The budget has headroom so GC-timing jitter can't flake CI,
// but an accidental per-request buffer, map or suite rebuild on the hot
// path trips it.
const warmRunAllocBudget = 60

// BenchmarkServiceWarmRun measures the warm /v1/run path — the request is
// already cached, so iterations cost normalize + key + singleflight +
// persistent-cache load — and asserts the allocation budget (enforced in
// CI by bench-smoke's 1x pass).
func BenchmarkServiceWarmRun(b *testing.B) {
	s, err := service.New(service.Config{CacheDir: b.TempDir(), Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	req := service.RunRequest{Bench: "gcc", Window: 3000}
	if _, err := s.Run(ctx, req); err != nil { // cold run warms the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	avg := testing.AllocsPerRun(50, func() {
		if _, err := s.Run(ctx, req); err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(avg, "audited-allocs/op")
	if avg > warmRunAllocBudget {
		b.Fatalf("warm /v1/run allocates %.0f objects/op, budget %d", avg, warmRunAllocBudget)
	}
}

// BenchmarkAblationICacheSets probes the paper's Section 7 future-work
// hypothesis: on vpr (64KB of I-capacity wanted, no associativity need —
// the paper's worst Program-Adaptive loss), a sets-resized direct-mapped
// front end recovers the frequency lost to the ways-based design's 4-way
// configuration.
func BenchmarkAblationICacheSets(b *testing.B) {
	spec, err := Workload("vpr")
	if err != nil {
		b.Fatal(err)
	}
	ways := DefaultProgramAdaptive()
	ways.ICache = 3 // 64KB 4-way (ways-based)
	sets := ways
	sets.ICacheBySets = true // 64KB direct mapped (sets-based)
	var tw, ts *Result
	for i := 0; i < b.N; i++ {
		tw, err = Run(spec, ways, benchWindow())
		if err != nil {
			b.Fatal(err)
		}
		ts, err = Run(spec, sets, benchWindow())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tw.Seconds()*1e6, "us-ways")
	b.ReportMetric(ts.Seconds()*1e6, "us-sets")
	b.ReportMetric(Improvement(tw.TimeFS, ts.TimeFS), "sets-gain-%")
}
