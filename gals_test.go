package gals

import (
	"testing"
)

func TestWorkloadLookup(t *testing.T) {
	if _, err := Workload("gcc"); err != nil {
		t.Fatal(err)
	}
	if _, err := Workload("not-a-benchmark"); err == nil {
		t.Error("bogus workload lookup succeeded")
	}
	if len(Workloads()) != 40 {
		t.Errorf("suite has %d workloads, want 40", len(Workloads()))
	}
}

func TestRunValidation(t *testing.T) {
	spec, _ := Workload("gzip")
	if _, err := Run(spec, Config{Mode: ProgramAdaptive, IntIQ: 5, FPIQ: 16}, 1000); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := Run(spec, DefaultSynchronous(), 0); err == nil {
		t.Error("zero window accepted")
	}
	r, err := Run(spec, DefaultSynchronous(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Instructions != 2000 {
		t.Errorf("ran %d instructions, want 2000", r.Stats.Instructions)
	}
}

func TestThreeModesRun(t *testing.T) {
	spec, _ := Workload("adpcm encode")
	for _, cfg := range []Config{DefaultSynchronous(), DefaultProgramAdaptive(), DefaultPhaseAdaptive()} {
		r, err := Run(spec, cfg, 5000)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		if r.TimeFS <= 0 {
			t.Errorf("%v: non-positive time", cfg.Mode)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) != 16 {
		t.Errorf("got %d experiments, want 16", len(ids))
	}
	tab, err := RunExperiment("table1", DefaultExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Errorf("table1 rows = %d, want 4", len(tab.Rows))
	}
}

// TestRecordedFacade exercises the recorded-trace facade: validation,
// bit-identical replay, and pool sharing through SweepOptions.
func TestRecordedFacade(t *testing.T) {
	spec, _ := Workload("gzip")
	if _, err := RecordWorkload(spec, 0); err == nil {
		t.Error("zero-length recording accepted")
	}
	if _, err := NewTracePool(0); err == nil {
		t.Error("zero-window pool accepted")
	}
	rec, err := RecordWorkload(spec, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRecorded(rec, DefaultSynchronous(), 0); err == nil {
		t.Error("zero window accepted")
	}
	live, err := Run(spec, DefaultPhaseAdaptive(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunRecorded(rec, DefaultPhaseAdaptive(), 3000)
	if err != nil {
		t.Fatal(err)
	}
	if live.TimeFS != replay.TimeFS {
		t.Errorf("replayed TimeFS %d != live %d", replay.TimeFS, live.TimeFS)
	}
	pool, err := NewTracePool(2000)
	if err != nil {
		t.Fatal(err)
	}
	cfg, tt := ProgramAdaptiveSearch(spec, SweepOptions{Window: 2000, Traces: pool})
	cfg2, tt2 := ProgramAdaptiveSearch(spec, SweepOptions{Window: 2000})
	if tt != tt2 || cfg != cfg2 {
		t.Errorf("pooled search (%v, %d) != pool-less search (%v, %d)", cfg, tt, cfg2, tt2)
	}
	if pool.Size() != 1 {
		t.Errorf("pool holds %d recordings, want 1", pool.Size())
	}
}

func TestImprovementMetric(t *testing.T) {
	if got := Improvement(150, 100); got != 50 {
		t.Errorf("Improvement = %v, want 50", got)
	}
}

func TestProgramAdaptiveSearchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("256-point search in -short mode")
	}
	spec, _ := Workload("adpcm encode")
	cfg, tt := ProgramAdaptiveSearch(spec, SweepOptions{Window: 2000})
	if tt <= 0 {
		t.Fatal("non-positive best time")
	}
	if cfg.Mode != ProgramAdaptive {
		t.Errorf("search returned mode %v", cfg.Mode)
	}
	// The search result can never be slower than the base configuration.
	base, err := Run(spec, DefaultProgramAdaptive(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tt > base.TimeFS {
		t.Errorf("exhaustive best (%d) slower than base config (%d)", tt, base.TimeFS)
	}
}

func TestPoliciesFacade(t *testing.T) {
	infos := Policies()
	if len(infos) < 3 {
		t.Fatalf("Policies() lists %d policies, want >= 3", len(infos))
	}
	names := map[string]bool{}
	for _, in := range infos {
		names[in.Name] = true
	}
	for _, want := range []string{"paper", "interval", "frozen"} {
		if !names[want] {
			t.Errorf("Policies() missing %q", want)
		}
	}

	spec, err := Workload("apsi")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPhaseAdaptive().WithPolicy("frozen", "")
	res, err := Run(spec, cfg, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Reconfigs != 0 {
		t.Errorf("frozen policy reconfigured %d times", res.Stats.Reconfigs)
	}
	if _, err := Run(spec, DefaultPhaseAdaptive().WithPolicy("nope", ""), 1000); err == nil {
		t.Error("unknown policy accepted by Run")
	}
}
