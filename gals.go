// Package gals is a full reproduction of "Dynamically Trading Frequency
// for Complexity in a GALS Microprocessor" (Dropsho, Semeraro, Albonesi,
// Magklis, Scott; MICRO-37, 2004): an adaptive multiple-clock-domain
// processor model in which each domain's key structure — instruction cache
// and branch predictor, data/L2 cache pair, integer and floating-point
// issue queues — can be upsized at the cost of that domain's clock
// frequency alone, under hardware phase-adaptive control.
//
// The package is a facade over the internal implementation:
//
//   - Workloads() lists the deterministic synthetic models of the paper's
//     40 benchmark runs (MediaBench / Olden / SPEC2000, Tables 6-8).
//   - Run() executes one benchmark on one machine configuration
//     (Synchronous, ProgramAdaptive, or PhaseAdaptive).
//   - Experiments()/RunExperiment() regenerate every table and figure of
//     the paper's evaluation.
//   - BestSynchronous(), ProgramAdaptiveSearch() and EvaluateSuite()
//     expose the design-space sweeps of Section 4.
//   - Policies() lists the pluggable adaptation policies (the paper's
//     controllers, a parameterized variant, and a frozen baseline);
//     Config.WithPolicy selects one, making the control algorithm itself a
//     sweepable design-space dimension.
//
// A minimal session:
//
//	spec, _ := gals.Workload("gcc")
//	res, _ := gals.Run(spec, gals.DefaultPhaseAdaptive(), 100_000)
//	fmt.Printf("%.3f instructions/ns\n", res.IPnsec())
//
// Performance knobs (see PERFORMANCE.md for measurements):
//
//   - RecordWorkload()/RunRecorded() capture a benchmark's deterministic
//     instruction stream once and replay it bit-identically, amortizing
//     trace generation across repeated runs of the same window.
//   - NewTracePool() shares recordings across sweeps: assign the pool to
//     SweepOptions.Traces so BestSynchronous and ProgramAdaptiveSearch
//     replay one recording per benchmark instead of regenerating it for
//     every one of their thousands of configuration runs.
//   - EvaluateSuite()/RunExperiment() memoize the whole evaluation
//     pipeline per ExperimentOptions: after figure6, table9 and figure7
//     are served from the same sweep without re-simulating anything.
//   - Clock-edge arithmetic takes a pure-integer fast path whenever
//     Config.JitterFrac is 0 (the default); enable jitter only when the
//     run needs it.
//   - UsePersistentCache() adds an on-disk result cache under all of the
//     above, making repeated evaluations incremental across processes;
//     cmd/galsd serves the same cache over HTTP with request
//     deduplication and a priority-scheduled worker pool.
package gals

import (
	"context"
	"fmt"
	"path/filepath"

	"gals/internal/control"
	"gals/internal/core"
	"gals/internal/experiment"
	"gals/internal/learn"
	"gals/internal/recstore"
	"gals/internal/resultcache"
	"gals/internal/sweep"
	"gals/internal/timing"
	"gals/internal/workload"
)

// Re-exported core types. Config selects a machine, Result reports a run;
// see the internal/core documentation on the fields.
type (
	// Config selects one machine configuration.
	Config = core.Config
	// Mode selects Synchronous, ProgramAdaptive or PhaseAdaptive.
	Mode = core.Mode
	// Result summarizes one simulation run.
	Result = core.Result
	// Stats are a run's counters.
	Stats = core.Stats
	// ReconfigEvent is one phase-controller decision (Figure 7 traces).
	ReconfigEvent = core.ReconfigEvent
	// Telemetry is a run's adaptation time-series: per-domain samples at
	// every controller decision boundary plus every reconfiguration event.
	// See RunTelemetry.
	Telemetry = core.Telemetry
	// TelemetrySample is one decision-boundary observation.
	TelemetrySample = core.TelemetrySample
	// TelemetryEvent is one reconfiguration with structure, direction and
	// trigger.
	TelemetryEvent = core.TelemetryEvent
	// WorkloadSpec describes one benchmark run.
	WorkloadSpec = workload.Spec
	// WorkloadParams parameterize a synthetic workload phase.
	WorkloadParams = workload.Params
	// ExperimentTable is one regenerated table or figure.
	ExperimentTable = experiment.Table
	// ExperimentOptions scale the dynamic experiments.
	ExperimentOptions = experiment.Options
	// SuiteResult is the full Figure-6 evaluation pipeline output.
	SuiteResult = experiment.SuiteResult
	// SweepOptions control design-space sweeps. Set Traces to a shared
	// TracePool to replay one recording per benchmark across sweeps.
	SweepOptions = sweep.Options
	// SweepSummary is a sweep's streaming aggregation: best-overall and
	// per-application winners in O(configs + benchmarks) memory.
	SweepSummary = sweep.Summary
	// Recording is an immutable recorded benchmark trace, replayable
	// concurrently and bit-identical to live generation.
	Recording = workload.Recording
	// TracePool shares one Recording per benchmark across runs and sweeps.
	TracePool = workload.Pool
	// RecordingStore persists recordings as mmap-replayed binary slabs.
	RecordingStore = recstore.Store
	// ICacheConfig, DCacheConfig and IQSize name structure configurations.
	ICacheConfig = timing.ICacheConfig
	DCacheConfig = timing.DCacheConfig
	IQSize       = timing.IQSize
	// PolicyInfo describes one registered adaptation policy (name,
	// description, accepted parameters); see Policies.
	PolicyInfo = control.Info
	// PolicyParamInfo describes one policy parameter.
	PolicyParamInfo = control.ParamInfo
	// PolicySetting pairs a policy name with a parameter assignment (and,
	// for blob-requiring policies, a weights artifact) for policy-axis
	// sweeps (sweep.PhaseSpace, POST /v1/sweep space "phase").
	PolicySetting = sweep.PolicySetting
	// PolicyModel is the learned policy's weights artifact in decoded form.
	PolicyModel = learn.Model
	// PolicyTrainOptions scale the learned-policy training pipeline.
	PolicyTrainOptions = learn.TrainOptions
	// PolicyTrainStats report one training-pipeline execution.
	PolicyTrainStats = learn.TrainStats
)

// Machine modes.
const (
	Synchronous     = core.Synchronous
	ProgramAdaptive = core.ProgramAdaptive
	PhaseAdaptive   = core.PhaseAdaptive
)

// DefaultSynchronous returns the best-overall fully synchronous machine of
// the paper's sweep (64KB direct-mapped I-cache, 16-entry queues).
func DefaultSynchronous() Config { return core.DefaultSync() }

// DefaultProgramAdaptive returns the adaptive MCD base configuration with
// structures fixed for a whole run.
func DefaultProgramAdaptive() Config { return core.DefaultAdaptive(core.ProgramAdaptive) }

// DefaultPhaseAdaptive returns the adaptive MCD machine with the paper's
// on-line controllers enabled (Accounting Caches and ILP-tracked issue
// queues), starting from the smallest/fastest configuration.
func DefaultPhaseAdaptive() Config {
	cfg := core.DefaultAdaptive(core.PhaseAdaptive)
	cfg.PLLScale = 0.1 // scaled to the shortened default windows
	return cfg
}

// Policies lists the registered adaptation policies in registration order:
// "paper" (the exact Section 3 controllers — the default), "interval" (the
// same controllers with the decision interval and hysteresis as
// parameters), "frozen" (never reconfigures; the MCD-overhead-only
// baseline), "feedback" (a PI closed-loop controller with gains, setpoints
// and anti-windup clamps as parameters) and "learned" (a deterministic
// linear predictor whose weights are a trained blob artifact — see
// TrainPolicy). Select one on a configuration with Config.WithPolicy; the
// selection, its parameters and its artifact digest are part of every
// result-cache key.
func Policies() []PolicyInfo { return control.Infos() }

// ValidatePolicy reports whether name/params select a registered adaptation
// policy with a well-formed parameter assignment ("" selects the paper
// default). Config.Validate applies the same check; this form lets CLIs and
// services reject a selection before building machines.
func ValidatePolicy(name, params string) error { return control.Validate(name, params) }

// ValidatePolicySelection is ValidatePolicy extended with the blob
// artifact: blob-requiring policies (learned) fail without one, non-blob
// policies fail with one, and a malformed artifact fails its policy's
// validation.
func ValidatePolicySelection(name, params, blob string) error {
	return control.ValidateSelection(name, params, blob)
}

// PolicyBlobDigest returns the canonical digest of a policy weights
// artifact — the identity under which it enters cache and memo keys.
func PolicyBlobDigest(blob string) string { return control.BlobDigest(blob) }

// TrainPolicy runs the learned-policy training pipeline: the paper's
// controllers are observed over recorded phase runs of the whole benchmark
// suite and the "learned" policy's linear heads are fitted to imitate their
// decisions. The returned blob is the canonical weights artifact — pass it
// via Config.PolicyBlob (policy "learned"), PolicySetting.Blob, or the
// service's policy_blob request fields. Training is deterministic: equal
// options produce bit-identical artifacts.
func TrainPolicy(o PolicyTrainOptions) (blob string, stats PolicyTrainStats, err error) {
	m, stats, err := learn.Train(o)
	if err != nil {
		return "", stats, err
	}
	blob, err = m.Encode()
	return blob, stats, err
}

// PolicyArtifact returns the weights artifact for the training options,
// training at most once per identity: artifacts are memoized in-process and
// persisted as sidecar entries in the persistent result cache when one is
// installed (UsePersistentCache), so repeated evaluations — and other
// processes sharing the cache directory — reuse one trained model.
func PolicyArtifact(o PolicyTrainOptions) (string, error) {
	return learn.Artifact(sweep.PersistStore(), o)
}

// Workloads returns the benchmark suite in the paper's Figure 6 order.
func Workloads() []WorkloadSpec { return workload.Suite() }

// Workload finds a benchmark run by name (e.g. "gcc", "adpcm decode").
func Workload(name string) (WorkloadSpec, error) {
	s, ok := workload.ByName(name)
	if !ok {
		return WorkloadSpec{}, fmt.Errorf("gals: unknown workload %q (have %v)", name, workload.Names())
	}
	return s, nil
}

// Run simulates n instructions of spec on cfg.
func Run(spec WorkloadSpec, cfg Config, n int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	return core.RunWorkload(spec, cfg, n), nil
}

// RunContext is Run bounded by ctx: cancellation and deadline expiry are
// observed between instruction quanta (every 10,000 instructions), well
// under one accounting interval, and return ctx's error with no Result. A
// run that completes is bit-identical to Run — a nil or never-cancelled
// context adds no overhead and changes nothing.
func RunContext(ctx context.Context, spec WorkloadSpec, cfg Config, n int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	return core.RunWorkloadContext(ctx, spec, cfg, n)
}

// RunParallel is Run with intra-run parallelism: the machine's software
// pipeline decomposes one simulation across up to `degree` stages (clamped
// to the pipeline depth of 3; <= 0 means use the host CPU count, <= 1 runs
// sequentially). The Result is bit-identical to Run — the degree is an
// execution-engine knob that never appears in results, recordings or cache
// keys.
func RunParallel(spec WorkloadSpec, cfg Config, n int64, degree int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	return core.RunWorkloadParallel(spec, cfg, n, core.ParallelDegree(degree)), nil
}

// RunTelemetry is RunParallel with a telemetry sampler attached: alongside
// the Result it returns the run's sealed adaptation series — one sample per
// controller decision boundary, one event per reconfiguration (ring-bounded
// at core.DefaultTelemetryCap each; the series reports rotations in its
// Dropped counters). The Result is bit-identical to Run/RunParallel:
// telemetry observes the timing stage and never feeds back into it.
func RunTelemetry(spec WorkloadSpec, cfg Config, n int64, degree int) (*Result, *Telemetry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	t := core.NewTelemetry(core.DefaultTelemetryCap)
	res, err := core.RunWorkloadTelemetryContext(context.Background(), spec, cfg, n, core.ParallelDegree(degree), t)
	if err != nil {
		return nil, nil, err
	}
	return res, t, nil
}

// RunRecordedParallel is RunRecorded with intra-run parallelism; see
// RunParallel for the degree contract.
func RunRecordedParallel(rec *Recording, cfg Config, n int64, degree int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	return core.RunSourceParallel(rec.Replay(), cfg, n, core.ParallelDegree(degree)), nil
}

// RecordWorkload captures the first n instructions of spec's deterministic
// stream into an immutable, shareable recording.
func RecordWorkload(spec WorkloadSpec, n int64) (*Recording, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive recording length %d", n)
	}
	return spec.Record(n), nil
}

// NewTracePool creates a pool that records each benchmark once at the given
// window and shares the recording with every requester (sweeps, repeated
// runs). Assign it to SweepOptions.Traces.
func NewTracePool(window int64) (*TracePool, error) {
	if window <= 0 {
		return nil, fmt.Errorf("gals: non-positive pool window %d", window)
	}
	return workload.NewPool(window), nil
}

// RunRecorded simulates n instructions of a recorded trace on cfg. The
// Result is bit-identical to Run on the recording's spec (windows within
// the recorded length never touch the live generator).
func RunRecorded(rec *Recording, cfg Config, n int64) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("gals: non-positive window %d", n)
	}
	return core.RunSource(rec.Replay(), cfg, n), nil
}

// Experiments lists the regenerable tables and figures in paper order.
func Experiments() []string { return experiment.IDs() }

// RunExperiment regenerates one table or figure by ID (e.g. "figure6").
func RunExperiment(id string, o ExperimentOptions) (*ExperimentTable, error) {
	return experiment.Run(id, o)
}

// DefaultExperimentOptions match the runs recorded in EXPERIMENTS.md.
func DefaultExperimentOptions() ExperimentOptions { return experiment.DefaultOptions() }

// EvaluateSuite runs the full Figure-6 pipeline: best-synchronous search,
// per-application Program-Adaptive search, and Phase-Adaptive runs. The
// pipeline is memoized per (normalized) options within the process, and
// figure6/table9/figure7 are derived from the same memo entry, so repeated
// evaluations cost one map lookup.
func EvaluateSuite(o ExperimentOptions) (*SuiteResult, error) {
	return experiment.RunSuite(o)
}

// SuiteComputations reports how many times the evaluation pipeline has
// actually executed (rather than being served from the memo). Useful for
// verifying that a sequence of experiments shared one sweep.
func SuiteComputations() int64 { return experiment.SuiteComputations() }

// UsePersistentCache installs an on-disk result cache at dir behind the
// suite memo and the sweep measurement layer: EvaluateSuite, RunExperiment,
// BestSynchronous and ProgramAdaptiveSearch then reload identical prior
// work from disk instead of re-simulating, across processes. Entries are
// keyed by the normalized request plus a schema version, so results can
// never go stale — a version bump simply orphans old entries (see
// README.md for the directory layout and invalidation rules). cmd/galsd
// serves the same cache over HTTP.
func UsePersistentCache(dir string) error {
	c, err := resultcache.Open(dir)
	if err != nil {
		return err
	}
	// Recordings live under the same root (<dir>/recordings), so sweeps and
	// suite pipelines replay mmap'd slabs instead of re-generating (or heap-
	// resident) traces; see UseRecordingStore for the store alone.
	if err := UseRecordingStore(filepath.Join(dir, recstore.Subdir)); err != nil {
		return err
	}
	experiment.SetSuitePersist(c)
	sweep.SetPersist(c)
	return nil
}

// UseRecordingStore installs an mmap-backed recording store at dir behind
// every trace pool the sweep and experiment layers create: each benchmark's
// instruction stream is recorded to disk at most once per directory (across
// processes) and replayed from file-backed pages, so paper-scale windows
// cost page cache instead of heap. Recordings are bit-identical to live
// generation; a corrupt or stale slab is re-recorded, never replayed.
func UseRecordingStore(dir string) error {
	st, err := recstore.Open(dir)
	if err != nil {
		return err
	}
	sweep.SetRecordings(st)
	return nil
}

// DisablePersistentCache detaches any installed persistent result cache and
// recording store; the process-local memo keeps working.
func DisablePersistentCache() {
	experiment.SetSuitePersist(nil)
	sweep.SetPersist(nil)
	sweep.SetRecordings(nil)
}

// BestSynchronous sweeps the fully synchronous design space over the whole
// suite and returns the best-overall configuration (paper Section 4). The
// sweep streams per-cell results into running accumulators (memory is
// O(configs + benchmarks) at any window). It errors in the degenerate case
// where no configuration produced a finite score (some run reported a
// non-positive time for every configuration).
func BestSynchronous(o SweepOptions) (Config, error) {
	specs := workload.Suite()
	cfgs := sweep.SyncSpace()
	sum, err := sweep.MeasureSummary(specs, cfgs, o)
	if err != nil {
		return Config{}, err
	}
	if sum.Best < 0 {
		return Config{}, fmt.Errorf("gals: synchronous sweep produced no finite run times")
	}
	return cfgs[sum.Best], nil
}

// ProgramAdaptiveSearch exhaustively evaluates the 256 adaptive MCD
// configurations on one benchmark and returns the best one with its run
// time — the paper's Program-Adaptive selection for that application.
func ProgramAdaptiveSearch(spec WorkloadSpec, o SweepOptions) (Config, timing.FS) {
	cfgs := sweep.AdaptiveSpace()
	sum, err := sweep.MeasureSummary([]workload.Spec{spec}, cfgs, o)
	if err != nil {
		// Only a caller-provided bounded Options.Exec can reject the sweep.
		panic(err)
	}
	return cfgs[sum.PerApp[0]], sum.PerAppTimes[0]
}

// Improvement returns the percent run-time improvement of adapted over
// baseline, the metric of paper Figure 6.
func Improvement(baseline, adapted timing.FS) float64 {
	return sweep.Improvement(baseline, adapted)
}
